package trace

import (
	"container/heap"
	"math"
	"sort"

	"rapid/internal/packet"
)

// PlanCursor streams a contact plan's occurrences in exactly the order
// a materialized Expand-and-Sort would list them, without ever holding
// the expanded schedule: memory is O(len(plan.Contacts)), independent
// of the horizon. Point occurrences (Window == 0, the entries Expand
// puts in Schedule.Meetings) come out as zero-duration Contacts; the
// consumer distinguishes them with Contact.Windowed.
//
// Yield order matches the runtime's scheduling order for a materialized
// plan: globally nondecreasing in time; at equal times point
// occurrences before windowed ones, each kind in its Schedule.Sort
// order ((Time, A, B) for points, (Start, A, B, Duration) for windows).
//
// With merging enabled, back-to-back windowed occurrences of one plan
// contact (Window == Period: a continuously available link modeled as
// abutting passes) coalesce into a single window spanning the whole
// run of occurrences — the run-length form of the schedule. Merging
// changes runtime semantics (one window open instead of one per pass),
// so it is opt-in.
type PlanCursor struct {
	plan    *ContactPlan
	horizon float64
	merge   bool
	h       occHeap
}

// occ is one periodic contact's next pending occurrence.
type occ struct {
	t float64 // occurrence start: Start + i·Period
	c int     // index into plan.Contacts
	i int64   // occurrence counter
}

type occHeap struct {
	items []occ
	plan  *ContactPlan
}

func (h *occHeap) Len() int { return len(h.items) }

// Less orders occurrences (time, windowed?, A, B, Duration, contact
// index) — the global interleave of Schedule.Sort's two lists with
// points first at shared instants.
func (h *occHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.t != b.t {
		return a.t < b.t
	}
	ca, cb := h.plan.Contacts[a.c], h.plan.Contacts[b.c]
	aw, bw := ca.Window > 0, cb.Window > 0
	if aw != bw {
		return !aw // points (meetings) schedule before windows
	}
	if ca.A != cb.A {
		return ca.A < cb.A
	}
	if ca.B != cb.B {
		return ca.B < cb.B
	}
	if aw && ca.Window != cb.Window {
		return ca.Window < cb.Window
	}
	return a.c < b.c
}

func (h *occHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *occHeap) Push(x any)    { h.items = append(h.items, x.(occ)) }
func (h *occHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// Cursor returns a streaming iterator over the plan's occurrences.
// mergeAbutting enables back-to-back window coalescing (see PlanCursor).
func (cp *ContactPlan) Cursor(mergeAbutting bool) *PlanCursor {
	pc := &PlanCursor{plan: cp, horizon: cp.Duration, merge: mergeAbutting}
	pc.h.plan = cp
	if math.IsNaN(cp.Duration) || math.IsInf(cp.Duration, 0) {
		return pc // unvalidated plan degrades to empty, as Expand does
	}
	for ci, c := range cp.Contacts {
		if math.IsNaN(c.Start) || math.IsInf(c.Start, 0) ||
			math.IsNaN(c.Period) || math.IsInf(c.Period, 0) {
			continue // Validate rejects these; mirror Expand's skip
		}
		if c.Start < cp.Duration {
			pc.h.items = append(pc.h.items, occ{t: c.Start, c: ci})
		}
	}
	heap.Init(&pc.h)
	return pc
}

// Next returns the next occurrence in global schedule order; ok is
// false when the plan is exhausted within the horizon. Windowed
// occurrences are clipped to the horizon exactly as Expand clips them.
func (pc *PlanCursor) Next() (Contact, bool) {
	for pc.h.Len() > 0 {
		o := heap.Pop(&pc.h).(occ)
		c := pc.plan.Contacts[o.c]
		out := Contact{A: c.A, B: c.B, Start: o.t}
		if c.Window > 0 {
			w := c.Window
			if o.t+w > pc.horizon {
				w = pc.horizon - o.t
			}
			if w <= 0 {
				pc.advance(o, c)
				continue
			}
			out.Duration = w
			out.RateBps = c.RateBps
			if pc.merge && c.Period > 0 && c.Window == c.Period {
				// Occurrences abut exactly: coalesce the remaining run
				// into one window reaching the horizon (or the
				// occurrence cap) — this contact is then exhausted.
				last := o.i
				for last < MaxOccurrences {
					nt := c.Start + float64(last+1)*c.Period
					if nt >= pc.horizon {
						break
					}
					last++
				}
				end := c.Start + float64(last)*c.Period + c.Window
				if end > pc.horizon {
					end = pc.horizon
				}
				out.Duration = end - o.t
				return out, true
			}
		} else {
			out.Bytes = c.Bytes
		}
		pc.advance(o, c)
		return out, true
	}
	return Contact{}, false
}

// advance pushes the contact's following occurrence, if any remains
// within the horizon and the MaxOccurrences cap Expand enforces.
func (pc *PlanCursor) advance(o occ, c PeriodicContact) {
	if c.Period <= 0 {
		return // one-shot
	}
	i := o.i + 1
	if i > MaxOccurrences {
		return
	}
	t := c.Start + float64(i)*c.Period
	if t >= pc.horizon {
		return
	}
	heap.Push(&pc.h, occ{t: t, c: o.c, i: i})
}

// Nodes returns the sorted set of node IDs the plan's contacts touch —
// the participant set of a run driven directly off the plan, computed
// without expanding occurrences.
func (cp *ContactPlan) Nodes() []packet.NodeID {
	seen := map[packet.NodeID]bool{}
	for _, c := range cp.Contacts {
		seen[c.A] = true
		seen[c.B] = true
	}
	out := make([]packet.NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

package trace

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"rapid/internal/packet"
)

// TestExpandExactOccurrenceTimes: occurrence times are Start + i·Period
// computed from the integer counter, bit-exact at the 10⁵th occurrence.
// The accumulating form t += Period drifts by an ULP per step and broke
// the documented byte-identical determinism of plan expansion.
func TestExpandExactOccurrenceTimes(t *testing.T) {
	const (
		start  = 0.3
		period = 0.1 // not representable in binary: maximal drift exposure
		n      = 100_000
	)
	cp := &ContactPlan{Duration: start + period*n}
	cp.Add(0, 1, start, period, 64)
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	s := cp.Expand()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Meetings) < n-1 || len(s.Meetings) > n+1 {
		t.Fatalf("expanded %d occurrences, want ~%d", len(s.Meetings), n)
	}
	for i, m := range s.Meetings {
		if want := start + float64(i)*period; m.Time != want {
			t.Fatalf("occurrence %d at %v, want exactly %v", i, m.Time, want)
		}
	}
}

// TestExpandDeterministic: the same plan flattens to identical
// schedules across expansions (the property the contact-graph families
// and their cache keys rely on).
func TestExpandDeterministic(t *testing.T) {
	cp := &ContactPlan{Duration: 5000}
	cp.Add(0, 1, 1.7, 3.3, 100)
	cp.AddWindow(1, 2, 0.5, 7.1, 2.5, 512)
	a, b := cp.Expand(), cp.Expand()
	if len(a.Meetings) != len(b.Meetings) || len(a.Contacts) != len(b.Contacts) {
		t.Fatal("expansion sizes differ")
	}
	for i := range a.Meetings {
		if a.Meetings[i] != b.Meetings[i] {
			t.Fatalf("meeting %d differs", i)
		}
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatalf("contact %d differs", i)
		}
	}
}

// TestValidateRejectsTinyPeriod: a period in (0, MinPeriod) would
// expand to billions of occurrences — Validate must refuse it before
// Expand can OOM.
func TestValidateRejectsTinyPeriod(t *testing.T) {
	for _, period := range []float64{1e-9, MinPeriod / 2, math.Nextafter(0, 1)} {
		cp := &ContactPlan{Duration: 1000}
		cp.Add(0, 1, 0, period, 10)
		if err := cp.Validate(); err == nil {
			t.Errorf("period %g accepted, want rejection", period)
		}
	}
	// The floor itself (over a horizon inside the occurrence budget)
	// and one-shot declarations stay legal.
	ok := &ContactPlan{Duration: 1}
	ok.Add(0, 1, 0, MinPeriod, 10)
	ok.Add(0, 1, 0.5, 0, 10)
	ok.Add(0, 1, 0.7, -1, 10)
	if err := ok.Validate(); err != nil {
		t.Errorf("legal periods rejected: %v", err)
	}
}

// TestValidateRejectsBudgetBustingExpansion: a legal period over a huge
// horizon still must not expand past the occurrence budget (the OOM
// guard MinPeriod alone cannot provide).
func TestValidateRejectsBudgetBustingExpansion(t *testing.T) {
	cp := &ContactPlan{Duration: 1000}
	cp.Add(0, 1, 0, MinPeriod, 10) // (1000-0)/1e-6 = 1e9 occurrences
	if err := cp.Validate(); err == nil {
		t.Error("billion-occurrence plan accepted, want rejection")
	}
	// Non-finite horizons are rejected before any expansion math.
	for _, d := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		cp := &ContactPlan{Duration: d}
		cp.Add(0, 1, 0, 10, 10)
		if err := cp.Validate(); err == nil {
			t.Errorf("duration %v accepted, want rejection", d)
		}
	}
}

// TestValidateRejectsBadWindows: windowed plan contacts need a positive
// finite rate and must not overlap themselves (window > period).
func TestValidateRejectsBadWindows(t *testing.T) {
	cases := []struct {
		name                 string
		window, rate, period float64
	}{
		{"zero rate", 5, 0, 60},
		{"negative rate", 5, -3, 60},
		{"inf rate", 5, math.Inf(1), 60},
		{"nan rate", 5, math.NaN(), 60},
		{"negative window", -2, 100, 60},
		{"self-overlap", 90, 100, 60},
	}
	for _, c := range cases {
		cp := &ContactPlan{Duration: 1000}
		cp.Contacts = append(cp.Contacts, PeriodicContact{
			A: 0, B: 1, Start: 0, Period: c.period,
			Window: c.window, RateBps: c.rate,
		})
		if err := cp.Validate(); err == nil {
			t.Errorf("%s: accepted, want rejection", c.name)
		}
	}
}

// TestExpandWindows: windowed plan contacts flatten to trace.Contact
// windows, clipped to the horizon; point contacts keep flattening to
// meetings in the same plan.
func TestExpandWindows(t *testing.T) {
	cp := &ContactPlan{Duration: 100}
	cp.AddWindow(0, 1, 10, 40, 15, 1000)
	cp.Add(1, 2, 5, 50, 777)
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	s := cp.Expand()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Meetings) != 2 { // t = 5, 55
		t.Fatalf("meetings %v", s.Meetings)
	}
	if len(s.Contacts) != 3 { // t = 10, 50, 90 (clipped to 10 s)
		t.Fatalf("contacts %v", s.Contacts)
	}
	for _, c := range s.Contacts {
		if !c.Windowed() || c.RateBps != 1000 {
			t.Fatalf("bad contact %+v", c)
		}
		if c.End() > s.Duration {
			t.Fatalf("contact %+v overruns the horizon", c)
		}
	}
	if last := s.Contacts[2]; last.Start != 90 || last.Duration != 10 {
		t.Errorf("horizon clip wrong: %+v", last)
	}
	if got := s.Contacts[0].Capacity(); got != 15000 {
		t.Errorf("window capacity %d want 15000", got)
	}
}

// TestContactDegradesToMeeting: the zero-duration form is exactly a
// Meeting.
func TestContactDegradesToMeeting(t *testing.T) {
	c := Contact{A: 3, B: 4, Start: 12.5, Bytes: 900}
	m, ok := c.AsMeeting()
	if !ok || m != (Meeting{A: 3, B: 4, Time: 12.5, Bytes: 900}) {
		t.Fatalf("AsMeeting = %+v, %v", m, ok)
	}
	if c.Capacity() != 900 || c.Windowed() || c.End() != 12.5 {
		t.Errorf("degenerate accessors wrong: %+v", c)
	}
	if _, ok := (Contact{A: 1, B: 2, Duration: 5, RateBps: 10}).AsMeeting(); ok {
		t.Error("windowed contact converted to a meeting")
	}
}

// TestScheduleValidateWindows: windowed contacts are checked for rate
// sanity and horizon overrun.
func TestScheduleValidateWindows(t *testing.T) {
	good := &Schedule{Duration: 100, Contacts: []Contact{
		{A: 0, B: 1, Start: 10, Duration: 20, RateBps: 100},
		{A: 0, B: 1, Start: 95, Bytes: 50},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid windowed schedule rejected: %v", err)
	}
	bad := []Schedule{
		{Duration: 100, Contacts: []Contact{{A: 1, B: 1, Start: 1, Duration: 2, RateBps: 1}}},
		{Duration: 100, Contacts: []Contact{{A: 0, B: 1, Start: 90, Duration: 20, RateBps: 1}}},
		{Duration: 100, Contacts: []Contact{{A: 0, B: 1, Start: 10, Duration: 5}}},
		{Duration: 100, Contacts: []Contact{{A: 0, B: 1, Start: -1, Bytes: 5}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

// TestCodecRoundTripContacts: windowed contacts survive the text codec
// (the meeting-only round-trip is property-tested in TestCodecRoundTrip;
// this guards the contact directive added with the window model).
func TestCodecRoundTripContacts(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s := &Schedule{Duration: 1000}
	tm := 0.0
	for i := 0; i < 40; i++ {
		tm += r.Float64() * 10
		if i%3 == 0 {
			s.Contacts = append(s.Contacts, Contact{
				A: packet.NodeID(r.Intn(10)), B: packet.NodeID(10 + r.Intn(10)),
				Start: tm, Bytes: int64(r.Intn(1 << 20)),
			})
			continue
		}
		s.Contacts = append(s.Contacts, Contact{
			A: packet.NodeID(r.Intn(10)), B: packet.NodeID(10 + r.Intn(10)),
			Start: tm, Duration: 1 + r.Float64()*20, RateBps: 1 + r.Float64()*1e6,
		})
	}
	s.Meetings = append(s.Meetings, Meeting{A: 0, B: 11, Time: 1, Bytes: 5})
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Contacts) != len(s.Contacts) || len(got.Meetings) != len(s.Meetings) {
		t.Fatalf("round trip lost records: %d/%d contacts, %d/%d meetings",
			len(got.Contacts), len(s.Contacts), len(got.Meetings), len(s.Meetings))
	}
	for i := range s.Contacts {
		a, b := s.Contacts[i], got.Contacts[i]
		if a.A != b.A || a.B != b.B || a.Bytes != b.Bytes || a.Windowed() != b.Windowed() {
			t.Fatalf("contact %d: %+v != %+v", i, a, b)
		}
		rel := func(x, y float64) bool { return math.Abs(x-y) <= 1e-9*math.Max(1, math.Abs(x)) }
		if !rel(a.Start, b.Start) || !rel(a.Duration, b.Duration) || !rel(a.RateBps, b.RateBps) {
			t.Fatalf("contact %d fields drifted: %+v != %+v", i, a, b)
		}
	}
}

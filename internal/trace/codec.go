package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rapid/internal/packet"
)

// The on-disk trace format is line-oriented text, one record per line:
//
//	# free-form comment
//	duration <seconds>
//	meet <nodeA> <nodeB> <time-seconds> <bytes>
//	contact <nodeA> <nodeB> <start-seconds> <duration-seconds> <rate-Bps> <bytes>
//
// A contact record is a duration-aware window (bytes carries the
// point-contact opportunity of the zero-duration degenerate form). The
// format mirrors the published DieselNet trace releases
// (traces.cs.umass.edu) closely enough that adapting a real trace is a
// matter of field reordering; readers predating the contact directive
// skip it as an unknown line.

// Write serializes a schedule. Meetings and contacts are written in
// their current order; call Sort first for canonical output.
func Write(w io.Writer, s *Schedule) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "duration %g\n", s.Duration); err != nil {
		return err
	}
	for _, m := range s.Meetings {
		if _, err := fmt.Fprintf(bw, "meet %d %d %g %d\n", m.A, m.B, m.Time, m.Bytes); err != nil {
			return err
		}
	}
	for _, c := range s.Contacts {
		if _, err := fmt.Fprintf(bw, "contact %d %d %g %g %g %d\n",
			c.A, c.B, c.Start, c.Duration, c.RateBps, c.Bytes); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a schedule written by Write. Unknown directives and
// comment lines (starting with '#') are skipped so the format can be
// extended compatibly.
func Read(r io.Reader) (*Schedule, error) {
	s := &Schedule{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "duration":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: duration needs 1 argument", lineNo)
			}
			d, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad duration: %v", lineNo, err)
			}
			s.Duration = d
		case "meet":
			if len(fields) != 5 {
				return nil, fmt.Errorf("trace: line %d: meet needs 4 arguments", lineNo)
			}
			a, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.Atoi(fields[2])
			t, err3 := strconv.ParseFloat(fields[3], 64)
			bytes, err4 := strconv.ParseInt(fields[4], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return nil, fmt.Errorf("trace: line %d: malformed meet record", lineNo)
			}
			s.Meetings = append(s.Meetings, Meeting{
				A: packet.NodeID(a), B: packet.NodeID(b), Time: t, Bytes: bytes,
			})
		case "contact":
			if len(fields) != 7 {
				return nil, fmt.Errorf("trace: line %d: contact needs 6 arguments", lineNo)
			}
			a, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.Atoi(fields[2])
			start, err3 := strconv.ParseFloat(fields[3], 64)
			dur, err4 := strconv.ParseFloat(fields[4], 64)
			rate, err5 := strconv.ParseFloat(fields[5], 64)
			bytes, err6 := strconv.ParseInt(fields[6], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil || err6 != nil {
				return nil, fmt.Errorf("trace: line %d: malformed contact record", lineNo)
			}
			s.Contacts = append(s.Contacts, Contact{
				A: packet.NodeID(a), B: packet.NodeID(b),
				Start: start, Duration: dur, RateBps: rate, Bytes: bytes,
			})
		default:
			// Skip unknown directives for forward compatibility.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// Package report renders experiment output: aligned ASCII tables,
// gnuplot-compatible .dat series files, and quick ASCII line plots so
// every figure of the paper can be inspected without leaving the
// terminal.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one labeled curve: parallel X/Y slices (e.g. load on X,
// average delay on Y for one protocol). YErr, when non-empty, carries
// the symmetric 95%-confidence half-width of each Y (replicated runs);
// figures without replication statistics leave it nil and render
// exactly as before.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	YErr  []float64
}

// Figure is a set of curves plus axis metadata, mirroring one figure of
// the paper.
type Figure struct {
	ID     string // e.g. "fig4"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// WriteDat emits the figure as a whitespace-separated table:
// first column X, one column per series, '#' header lines. Series may
// have different X grids; missing values print as "-".
func (f *Figure) WriteDat(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n# x=%s y=%s\n", f.ID, f.Title, f.XLabel, f.YLabel); err != nil {
		return err
	}
	cols := make([]string, 0, len(f.Series)+1)
	cols = append(cols, "x")
	for _, s := range f.Series {
		label := strings.ReplaceAll(s.Label, " ", "_")
		cols = append(cols, label)
		if len(s.YErr) > 0 {
			cols = append(cols, label+"_err95")
		}
	}
	if _, err := fmt.Fprintf(w, "# %s\n", strings.Join(cols, "\t")); err != nil {
		return err
	}
	// Union of X values.
	xsSet := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			i, ok := s.at(x)
			if ok {
				row = append(row, trimFloat(s.Y[i]))
			} else {
				row = append(row, "-")
			}
			if len(s.YErr) > 0 {
				if ok && i < len(s.YErr) {
					row = append(row, trimFloat(s.YErr[i]))
				} else {
					row = append(row, "-")
				}
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// at finds the index of an exact X grid point.
func (s *Series) at(x float64) (int, bool) {
	for i, sx := range s.X {
		if sx == x {
			return i, true
		}
	}
	return 0, false
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// plot glyph per series, cycled.
var glyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// RenderASCII draws the figure as a width×height ASCII plot with a
// legend — enough to eyeball the shape claims (who wins, where the
// curves cross) straight from a terminal.
func (f *Figure) RenderASCII(width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 18
	}
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range f.Series {
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if first {
		return fmt.Sprintf("%s — %s (no data)\n", f.ID, f.Title)
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			c := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			r := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			if r >= 0 && r < height && c >= 0 && c < width {
				grid[r][c] = g
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%s (y: %.4g .. %.4g)\n", f.YLabel, ymin, ymax)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, " %s (x: %.4g .. %.4g)\n", f.XLabel, xmin, xmax)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c %s\n", glyphs[si%len(glyphs)], s.Label)
	}
	return b.String()
}

// Table is a simple aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render aligns columns with at least two spaces of separation.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case math.IsInf(v, 0):
		return "inf"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Pct formats a fraction as a percentage cell.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

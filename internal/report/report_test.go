package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleFigure() *Figure {
	return &Figure{
		ID: "fig4", Title: "Average delay vs load",
		XLabel: "load", YLabel: "delay (min)",
		Series: []Series{
			{Label: "rapid", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}},
			{Label: "max prop", X: []float64{1, 2, 4}, Y: []float64{15, 25, 45}},
		},
	}
}

func TestWriteDat(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleFigure().WriteDat(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# fig4: Average delay vs load") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "max_prop") {
		t.Error("labels must be underscore-joined")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 3 header lines + union of x grid {1,2,3,4}.
	if len(lines) != 3+4 {
		t.Fatalf("lines %d: %q", len(lines), out)
	}
	// x=3 row: rapid has 30, maxprop missing.
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "3\t") {
			found = true
			if !strings.Contains(l, "30") || !strings.Contains(l, "-") {
				t.Errorf("row %q", l)
			}
		}
	}
	if !found {
		t.Error("x=3 row missing")
	}
}

func TestRenderASCII(t *testing.T) {
	out := sampleFigure().RenderASCII(40, 10)
	if !strings.Contains(out, "fig4") || !strings.Contains(out, "rapid") {
		t.Errorf("plot output missing metadata:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("plot glyphs missing:\n%s", out)
	}
	// Degenerate sizes fall back to defaults.
	small := sampleFigure().RenderASCII(1, 1)
	if len(small) == 0 {
		t.Error("degenerate size produced nothing")
	}
	empty := (&Figure{ID: "e", Title: "none"}).RenderASCII(40, 10)
	if !strings.Contains(empty, "no data") {
		t.Error("empty figure must say so")
	}
	// NaN/Inf points are skipped, not plotted.
	weird := &Figure{ID: "w", Series: []Series{{
		Label: "w", X: []float64{1, 2}, Y: []float64{math.NaN(), math.Inf(1)},
	}}}
	if out := weird.RenderASCII(40, 10); !strings.Contains(out, "no data") {
		t.Error("all-invalid series must render as no data")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Header: []string{"metric", "paper", "ours"}}
	tb.AddRow("delivered", "88%", Pct(0.873))
	tb.AddRow("delay", "91.7", F(93.12))
	out := tb.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "metric") || !strings.Contains(lines[1], "---") {
		t.Errorf("header/separator malformed:\n%s", out)
	}
	if !strings.Contains(out, "87.3%") || !strings.Contains(out, "93.1") {
		t.Errorf("cell formatting:\n%s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		1234.6: "1235",
		42.25:  "42.2",
		1.5:    "1.500",
	}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Errorf("F(%v)=%q want %q", v, got, want)
		}
	}
	if F(math.NaN()) != "nan" || F(math.Inf(1)) != "inf" {
		t.Error("special values")
	}
}

// TestWriteDatErrorColumns: a series with YErr gains a paired _err95
// column; series without stay exactly as before (golden-figure
// compatibility).
func TestWriteDatErrorColumns(t *testing.T) {
	fig := &Figure{
		ID: "ci", Title: "with error bars", XLabel: "load", YLabel: "delay",
		Series: []Series{
			{Label: "rapid", X: []float64{1, 2}, Y: []float64{10, 20}, YErr: []float64{0.5, 1.5}},
			{Label: "random", X: []float64{1, 2}, Y: []float64{30, 40}},
		},
	}
	var buf strings.Builder
	if err := fig.WriteDat(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "rapid\trapid_err95\trandom") {
		t.Errorf("header missing paired error column:\n%s", out)
	}
	if strings.Contains(out, "random_err95") {
		t.Errorf("error column invented for a series without YErr:\n%s", out)
	}
	if !strings.Contains(out, "1\t10\t0.5\t30\n") || !strings.Contains(out, "2\t20\t1.5\t40\n") {
		t.Errorf("data rows misaligned:\n%s", out)
	}

	// Without YErr the rendering is byte-identical to the legacy form.
	legacy := &Figure{
		ID: "plain", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "a b", X: []float64{1}, Y: []float64{2}}},
	}
	buf.Reset()
	if err := legacy.WriteDat(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# plain: t\n# x=x y=y\n# x\ta_b\n1\t2\n"
	if buf.String() != want {
		t.Errorf("legacy rendering changed:\n%q\nwant\n%q", buf.String(), want)
	}
}

package rapid_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (BenchmarkTable3, BenchmarkFig3..BenchmarkFig24), each
// regenerating a scaled-down version of the experiment through the same
// code path `cmd/experiments` uses at full scale, plus the ablation
// benches DESIGN.md §5 calls out and micro-benchmarks of the hot paths.
//
//	go test -bench=. -benchmem
//
// Figure benchmarks report ns/op for one full experiment regeneration
// at bench scale; cross-experiment caching is disabled by using a
// distinct scale name per iteration set.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"rapid"
	"rapid/internal/buffer"
	"rapid/internal/control"
	"rapid/internal/core"
	"rapid/internal/exp"
	"rapid/internal/meet"
	"rapid/internal/packet"
	"rapid/internal/routing/optimal"
	"rapid/internal/scenario"
	"rapid/internal/sim"
	"rapid/internal/stat"
	"rapid/internal/trace"
)

// benchScale is smaller than TinyScale: single load point, shortened
// horizons, one run — enough to exercise every moving part of the
// experiment without minutes-long benchmark iterations.
func benchScale(tag string) exp.Scale {
	return exp.Scale{
		Name: "bench-" + tag, Days: 1, Runs: 1, DayHours: 2,
		TraceLoads:    []float64{8},
		SynthLoads:    []float64{20},
		Buffers:       []int64{40 << 10},
		MetaFractions: []float64{0, -1},
		OptimalLoads:  []float64{2},
		SynthDuration: 200,
	}
}

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A per-iteration scale name defeats the cross-figure memo so
		// every iteration measures real work.
		out := e.Run(benchScale(fmt.Sprintf("%s-%d", id, i)))
		if out.Figure == nil && out.Table == nil {
			b.Fatal("no output")
		}
	}
}

func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)  { benchExperiment(b, "fig21") }
func BenchmarkFig22(b *testing.B)  { benchExperiment(b, "fig22") }
func BenchmarkFig23(b *testing.B)  { benchExperiment(b, "fig23") }
func BenchmarkFig24(b *testing.B)  { benchExperiment(b, "fig24") }

// ---------------------------------------------------------------------
// Ablation benches (DESIGN.md §5): each contrasts a design choice by
// running the same scenario with the alternative setting and reporting
// the resulting average delay as a benchmark metric.

func ablationScenario() (*rapid.Schedule, rapid.Workload) {
	sched := rapid.ExponentialMobility(rapid.MobilityConfig{
		Nodes: 16, Duration: 500, MeanMeeting: 50, TransferBytes: 40 << 10,
	}, 3)
	w := rapid.PoissonWorkload(rapid.WorkloadConfig{
		Nodes: sched.Nodes(), PacketsPerWindowPerDest: 2, Window: 50,
		Duration: 400, PacketBytes: 1 << 10, Deadline: 60,
	}, 4)
	return sched, w
}

// BenchmarkAblationHops contrasts the h-hop meeting-estimation horizon
// (paper: h = 3).
func BenchmarkAblationHops(b *testing.B) {
	sched, w := ablationScenario()
	for _, hops := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("h=%d", hops), func(b *testing.B) {
			var delay float64
			for i := 0; i < b.N; i++ {
				res := rapid.Run(sched, w, rapid.RAPID(rapid.MinimizeAvgDelay),
					rapid.Config{Seed: 5, Hops: hops})
				delay = res.Summary.AvgDelay
			}
			b.ReportMetric(delay, "avgDelay_s")
		})
	}
}

// BenchmarkAblationDelta contrasts delta metadata exchange with a
// disabled control channel (full-exchange vs none bounds the channel's
// value; Fig. 8 sweeps the middle).
func BenchmarkAblationDelta(b *testing.B) {
	sched, w := ablationScenario()
	for _, mode := range []struct {
		name string
		frac float64
	}{{"full-metadata", 0}, {"no-metadata", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			var delay float64
			for i := 0; i < b.N; i++ {
				res := rapid.Run(sched, w, rapid.RAPID(rapid.MinimizeAvgDelay),
					rapid.Config{Seed: 5, MetaFraction: mode.frac})
				delay = res.Summary.AvgDelay
			}
			b.ReportMetric(delay, "avgDelay_s")
		})
	}
}

// BenchmarkAblationWorkConserving contrasts the max-delay metric (whose
// plan order embodies the §3.5.3 work-conserving recomputation) with
// the avg-delay metric on the same scenario, reporting max delay.
func BenchmarkAblationWorkConserving(b *testing.B) {
	sched, w := ablationScenario()
	for _, m := range []rapid.Metric{rapid.MinimizeMaxDelay, rapid.MinimizeAvgDelay} {
		b.Run(m.String(), func(b *testing.B) {
			var maxDelay float64
			for i := 0; i < b.N; i++ {
				res := rapid.Run(sched, w, rapid.RAPID(m), rapid.Config{Seed: 5})
				maxDelay = res.Summary.MaxDelay
			}
			b.ReportMetric(maxDelay, "maxDelay_s")
		})
	}
}

// BenchmarkAblationGammaVsExp measures the cost of the exact gamma CDF
// against the exponential approximation Estimate-Delay actually uses
// (§4.1.1's modelling shortcut).
func BenchmarkAblationGammaVsExp(b *testing.B) {
	b.Run("gamma-cdf", func(b *testing.B) {
		g := 0.0
		for i := 0; i < b.N; i++ {
			v, _ := stat.GammaRegP(3, float64(i%100)/10)
			g += v
		}
		_ = g
	})
	b.Run("exp-cdf", func(b *testing.B) {
		g := 0.0
		for i := 0; i < b.N; i++ {
			g += control.DeliveryProb([]float64{30}, float64(i%100)/10)
		}
		_ = g
	})
}

// BenchmarkAblationDAGDelay contrasts Estimate-Delay's closed form with
// the Appendix-C DAG Monte Carlo on the Fig. 2 scenario.
func BenchmarkAblationDAGDelay(b *testing.B) {
	sc := core.DagScenario{
		Queues: map[packet.NodeID][]packet.ID{1: {200}, 2: {100, 200}, 3: {100, 200}},
		Rate:   map[packet.NodeID]float64{1: 0.2, 2: 0.2, 3: 0.2},
	}
	b.Run("dag-delay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.DagDelay(sc, 2048, int64(i))
		}
	})
	b.Run("estimate-delay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.EstimateDelayExpectation(sc)
		}
	})
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the hot paths.

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.New(1)
		for j := 0; j < 1000; j++ {
			e.ScheduleFunc(float64(j%97), func(*sim.Engine) {})
		}
		e.Run()
	}
}

func BenchmarkQueueIndexBuild(b *testing.B) {
	store := buffer.New(0)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		store.Insert(&buffer.Entry{P: &packet.Packet{
			ID: packet.ID(i), Dst: packet.NodeID(r.Intn(20)), Size: 1024,
			Created: r.Float64() * 1000,
		}}, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := core.NewQueueIndex(store)
		_ = idx.BytesAhead(1000)
	}
}

func BenchmarkControlExchange(b *testing.B) {
	inv := make([]control.InventoryItem, 500)
	for i := range inv {
		inv[i] = control.InventoryItem{
			ID: packet.ID(i), Dst: packet.NodeID(i % 20), Size: 1024, Delay: 100,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := control.NewState(0, 3, nil)
		c := control.NewState(1, 3, nil)
		control.Exchange(a, c, inv, nil, 10, control.Options{MaxBytes: -1})
	}
}

func BenchmarkMeetExpected(b *testing.B) {
	e := meet.New(0, 3)
	r := rand.New(rand.NewSource(2))
	for owner := 1; owner < 30; owner++ {
		t := meet.Table{}
		for peer := 0; peer < 30; peer++ {
			if peer != owner && r.Float64() < 0.4 {
				t[packet.NodeID(peer)] = 10 + r.Float64()*1000
			}
		}
		e.MergeTable(packet.NodeID(owner), t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Expected(packet.NodeID(i%30), packet.NodeID((i+7)%30))
	}
}

func BenchmarkOptimalOracle(b *testing.B) {
	gen := trace.NewDieselNet(trace.DefaultDieselNet())
	cfg := trace.DefaultDieselNet()
	cfg.DayHours = 2
	gen = trace.NewDieselNet(cfg)
	sched := gen.Day(0)
	w := rapid.PoissonWorkload(rapid.WorkloadConfig{
		Nodes: sched.Nodes(), PacketsPerWindowPerDest: 2, Window: 3600,
		Duration: sched.Duration, PacketBytes: 1 << 10,
	}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		optimal.Solve(sched, w, optimal.Options{ImprovePasses: 1})
	}
}

func BenchmarkRapidSessionHeavyBuffer(b *testing.B) {
	// One full contact session between two nodes carrying 2k packets.
	sched := &trace.Schedule{Duration: 1000}
	for i := 0; i < 40; i++ {
		sched.Meetings = append(sched.Meetings, trace.Meeting{
			A: packet.NodeID(i % 8), B: packet.NodeID((i + 3) % 8),
			Time: float64(i * 20), Bytes: 256 << 10,
		})
	}
	w := rapid.PoissonWorkload(rapid.WorkloadConfig{
		Nodes: []rapid.NodeID{0, 1, 2, 3, 4, 5, 6, 7}, PacketsPerWindowPerDest: 40,
		Window: 100, Duration: 800, PacketBytes: 1 << 10,
	}, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rapid.Run(sched, w, rapid.RAPID(rapid.MinimizeAvgDelay), rapid.Config{Seed: int64(i)})
	}
}

// ---------------------------------------------------------------------
// Constellation scale (DESIGN.md §5): a 200-node orbital contact plan —
// 8 planes × 24 satellites + 8 ground stations, the tiny-scale
// constellation the CI benchmark job gates on — run end to end through
// the parallel experiment engine. This is the routing hot path an order
// of magnitude past the paper's 20 buses; its ns/op is the headline
// number of the recorded perf trajectory (BENCH_*.json).

// constellationGrid expands the tiny-scale constellation-ground family
// (exp.TinyScale's constellation dimensions) for one RAPID arm.
func constellationGrid(tag string) []scenario.Scenario {
	sc := exp.TinyScale()
	scs, err := scenario.Expand("constellation-ground", scenario.Params{
		Tag: tag, Runs: 1, Loads: sc.ConstelLoads,
		Protocols: []scenario.Proto{scenario.ProtoRapid},
		Planes:    sc.ConstelPlanes, SatsPerPlane: sc.ConstelSats,
		Ground: sc.ConstelGround, OrbitPeriod: sc.ConstelPeriod,
		Duration: sc.ConstelPeriod,
	})
	if err != nil {
		panic(err)
	}
	return scs
}

func BenchmarkConstellation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := exp.NewEngine(0, 0)
		grid := constellationGrid(fmt.Sprintf("bench-constel-%d", i))
		sums := e.Summaries(grid)
		for _, s := range sums {
			if s.Generated == 0 || s.Delivered == 0 {
				b.Fatal("constellation run delivered nothing")
			}
		}
	}
}

// BenchmarkConstellationPasses is the windowed twin of
// BenchmarkConstellation: the same 200-node population under
// duration-aware pass windows, exercising the streaming transfer path
// (contact-start/end event pairs, per-packet completion events, radio
// sharing) instead of instantaneous sessions.
func BenchmarkConstellationPasses(b *testing.B) {
	sc := exp.TinyScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := exp.NewEngine(0, 0)
		grid, err := scenario.Expand("constellation-passes", scenario.Params{
			Tag: fmt.Sprintf("bench-passes-%d", i), Runs: 1, Loads: sc.ConstelLoads,
			Protocols: []scenario.Proto{scenario.ProtoRapid},
			Planes:    sc.ConstelPlanes, SatsPerPlane: sc.ConstelSats,
			Ground: sc.ConstelGround, OrbitPeriod: sc.ConstelPeriod,
			Duration: sc.ConstelPeriod,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range e.Summaries(grid) {
			if s.Generated == 0 || s.Delivered == 0 {
				b.Fatal("windowed constellation run delivered nothing")
			}
		}
	}
}

// ---------------------------------------------------------------------
// Mega-constellation scale (DESIGN.md §10): the 2,024-node LEO shell —
// DefaultScale's 40 planes × 50 satellites + 24 ground stations over one
// orbital period — run lazily off the periodic contact plan with a
// streaming ground-segment workload. This is the structure-of-arrays
// hot path at its design scale; CI runs it at -benchtime=1x.

// megaGrid expands the mega-constellation family at DefaultScale's mega
// dimensions for one RAPID arm.
func megaGrid(tag string) []scenario.Scenario {
	sc := exp.DefaultScale()
	scs, err := scenario.Expand("mega-constellation", scenario.Params{
		Tag: tag, Runs: 1, Loads: []float64{1},
		Planes: sc.MegaPlanes, SatsPerPlane: sc.MegaSats,
		Ground: sc.MegaGround, OrbitPeriod: sc.MegaPeriod,
		Duration: sc.MegaPeriod,
	})
	if err != nil {
		panic(err)
	}
	// The mega run measures the intra-run parallel engine at full
	// hardware width (one worker per CPU; single-core machines degrade
	// gracefully to the serial loop, byte-identically).
	for i := range scs {
		scs[i].Config.Workers = -1
	}
	return scs
}

func BenchmarkMegaConstellation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := exp.NewEngine(0, 0)
		grid := megaGrid(fmt.Sprintf("bench-mega-%d", i))
		for _, s := range e.Summaries(grid) {
			if s.Generated == 0 || s.Delivered == 0 {
				b.Fatal("mega-constellation run delivered nothing")
			}
		}
	}
}

// ---------------------------------------------------------------------
// Parallel sweep engine (DESIGN.md §6): the same ≥4-scenario registry
// sweep executed with one worker and with GOMAXPROCS workers. On
// multi-core hardware the workers=N variant shows the engine's
// wall-clock speedup; each iteration uses a fresh engine so caching
// never short-circuits the measurement.
//
//	go test -bench 'Sweep' -cpu 1,4,8

func sweepGrid(tag string) []scenario.Scenario {
	scs, err := scenario.Expand("synth-exponential", scenario.Params{
		Tag: tag, Runs: 2, Loads: []float64{10, 40},
		Protocols: []scenario.Proto{scenario.ProtoRapid, scenario.ProtoMaxProp},
		Nodes:     12, Duration: 300,
	})
	if err != nil {
		panic(err)
	}
	return scs
}

// constelSweepGrid is the constellation arm of the sweep benchmark: a
// small orbital population so the sweep measures engine fan-out, not
// one giant scenario (BenchmarkConstellation covers the 200-node run).
func constelSweepGrid(tag string) []scenario.Scenario {
	scs, err := scenario.Expand("constellation-ground", scenario.Params{
		Tag: tag, Runs: 2, Loads: []float64{2, 8},
		Protocols: []scenario.Proto{scenario.ProtoRapid, scenario.ProtoMaxProp},
		Planes:    3, SatsPerPlane: 4, Ground: 2,
		OrbitPeriod: 150, Duration: 300,
	})
	if err != nil {
		panic(err)
	}
	return scs
}

func BenchmarkSweep(b *testing.B) {
	families := []struct {
		name string
		grid func(tag string) []scenario.Scenario
	}{
		{"synth-exponential", sweepGrid},
		{"constellation-ground", constelSweepGrid},
	}
	pools := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		pools = append(pools, n)
	}
	for _, fam := range families {
		for _, workers := range pools {
			b.Run(fmt.Sprintf("family=%s/workers=%d", fam.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					e := exp.NewEngine(workers, 0)
					grid := fam.grid(fmt.Sprintf("bench-sweep-%s-%d-%d", fam.name, workers, i))
					if got := e.Summaries(grid); len(got) != len(grid) {
						b.Fatalf("got %d summaries for %d scenarios", len(got), len(grid))
					}
				}
			})
		}
	}
}

// BenchmarkSweepCached measures a fully warm cache: the second pass
// over a sweep costs map lookups only.
func BenchmarkSweepCached(b *testing.B) {
	e := exp.NewEngine(0, 0)
	grid := sweepGrid("bench-sweep-cached")
	e.Summaries(grid)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Summaries(grid)
	}
}

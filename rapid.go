// Package rapid is a Go implementation of RAPID — "DTN Routing as a
// Resource Allocation Problem" (Balasubramanian, Levine, Venkataramani,
// SIGCOMM 2007) — together with the complete evaluation stack the paper
// describes: a deterministic DTN simulator, synthetic DieselNet traces,
// exponential and power-law mobility models, the MaxProp /
// Spray-and-Wait / PRoPHET / Random / Epidemic baselines, an offline
// optimal oracle with an exact ILP cross-check, and a harness that
// regenerates every table and figure of the paper's evaluation.
//
// # Quick start
//
//	sched := rapid.ExponentialMobility(rapid.MobilityConfig{
//		Nodes: 20, Duration: 900, MeanMeeting: 60, TransferBytes: 100 << 10,
//	}, 1)
//	w := rapid.PoissonWorkload(rapid.WorkloadConfig{
//		Nodes: sched.Nodes(), PacketsPerWindowPerDest: 4,
//		Window: 50, Duration: 900, PacketBytes: 1 << 10,
//	}, 2)
//	res := rapid.Run(sched, w, rapid.RAPID(rapid.MinimizeAvgDelay), rapid.Config{})
//	fmt.Printf("delivered %.0f%%, avg delay %.1fs\n",
//		100*res.Summary.DeliveryRate, res.Summary.AvgDelay)
//
// The cmd/experiments binary regenerates the paper's figures;
// DESIGN.md maps each figure to the modules involved and EXPERIMENTS.md
// records paper-versus-measured values.
package rapid

import (
	"math/rand"

	"rapid/internal/core"
	"rapid/internal/metrics"
	"rapid/internal/mobility"
	"rapid/internal/packet"
	"rapid/internal/routing"
	"rapid/internal/routing/cgr"
	"rapid/internal/routing/epidemic"
	"rapid/internal/routing/maxprop"
	"rapid/internal/routing/optimal"
	"rapid/internal/routing/prophet"
	"rapid/internal/routing/randomw"
	"rapid/internal/routing/spraywait"
	"rapid/internal/trace"
)

// Re-exported data-plane types: these are the library's vocabulary.
type (
	// NodeID identifies a DTN node.
	NodeID = packet.NodeID
	// PacketID identifies a packet within a run.
	PacketID = packet.ID
	// Packet is one DTN bundle (source, destination, size, creation
	// time, optional absolute deadline).
	Packet = packet.Packet
	// Workload is a time-sorted packet set.
	Workload = packet.Workload
	// Meeting is one instantaneous transfer opportunity between two
	// nodes.
	Meeting = trace.Meeting
	// Contact is a duration-aware transfer opportunity: a window of
	// Duration seconds at RateBps. Zero-duration contacts degrade to
	// point meetings.
	Contact = trace.Contact
	// ContactPlan is a deterministic periodic contact schedule (the
	// contact-graph abstraction for computable connectivity).
	ContactPlan = trace.ContactPlan
	// Schedule is a node-meeting schedule (§3.1's multigraph), holding
	// point meetings, windowed contacts, or both.
	Schedule = trace.Schedule
	// Summary is the reduced metrics of one run.
	Summary = metrics.Summary
)

// Metric selects RAPID's routing objective (§3.5).
type Metric = core.Metric

// The three instantiated routing metrics of the paper.
const (
	// MinimizeAvgDelay minimizes average delivery delay (Eq. 1).
	MinimizeAvgDelay = core.AvgDelay
	// MinimizeMissedDeadlines maximizes in-deadline delivery (Eq. 2).
	MinimizeMissedDeadlines = core.Deadline
	// MinimizeMaxDelay minimizes the worst-case delay (Eq. 3).
	MinimizeMaxDelay = core.MaxDelay
)

// ControlChannel selects how RAPID's metadata propagates.
type ControlChannel int

const (
	// InBand is the default: metadata rides transfer opportunities and
	// is charged against them (§4.2).
	InBand ControlChannel = iota
	// InstantGlobal is the idealized hybrid-DTN channel of §6.2.3:
	// metadata is globally visible at zero cost.
	InstantGlobal
	// NoControl disables the control plane entirely.
	NoControl
)

// Config carries runtime parameters for Run.
type Config struct {
	// BufferBytes is per-node storage for in-transit packets
	// (<= 0: unlimited).
	BufferBytes int64
	// Control selects the metadata channel (default InBand).
	Control ControlChannel
	// MetaFraction caps in-band metadata at this fraction of each
	// transfer opportunity; 0 means the paper's default (uncapped).
	// Use a negative value to disable metadata entirely.
	MetaFraction float64
	// AcksOnly restricts the control channel to delivery
	// acknowledgments (used by MaxProp and Random-with-acks arms).
	AcksOnly bool
	// LocalMetaOnly restricts metadata to the sender's own buffer
	// (the rapid-local ablation arm of Fig. 14).
	LocalMetaOnly bool
	// Hops is the transitive meeting-estimation horizon (default 3).
	Hops int
	// Seed drives every random decision; runs are reproducible.
	Seed int64
}

// Protocol is an opaque routing-protocol selection.
type Protocol struct {
	name    string
	factory routing.RouterFactory
	// newFactory, when set, derives a fresh factory per Run — required
	// by protocols whose routers share per-run planner state (CGR), so
	// a Protocol value stays safely reusable across runs.
	newFactory func() routing.RouterFactory
	acks       bool // protocol expects ack flooding (MaxProp)
	noCtl      bool // protocol uses no control channel at all
}

// Name returns the protocol's display name.
func (p Protocol) Name() string { return p.name }

// RAPID returns the paper's protocol optimizing the given metric.
func RAPID(m Metric) Protocol {
	return Protocol{name: "rapid/" + m.String(), factory: core.New(m)}
}

// MaxProp returns the MaxProp baseline [Burgess et al. 2006].
func MaxProp() Protocol {
	return Protocol{name: "maxprop", factory: maxprop.New(), acks: true}
}

// SprayAndWait returns binary Spray and Wait with token budget l
// (l <= 0 selects the paper's L = 12).
func SprayAndWait(l int) Protocol {
	return Protocol{name: "spray-and-wait", factory: spraywait.New(l), noCtl: true}
}

// PRoPHET returns the PRoPHET baseline with the paper's parameters.
func PRoPHET() Protocol {
	return Protocol{name: "prophet", factory: prophet.New(prophet.DefaultParams()), noCtl: true}
}

// Random returns the random-replication baseline.
func Random() Protocol {
	return Protocol{name: "random", factory: randomw.New(), noCtl: true}
}

// RandomWithAcks returns Random plus acknowledgment flooding (the
// Fig. 14 component arm).
func RandomWithAcks() Protocol {
	return Protocol{name: "random+acks", factory: randomw.New(), acks: true}
}

// Epidemic returns classic epidemic flooding.
func Epidemic() Protocol {
	return Protocol{name: "epidemic", factory: epidemic.New()}
}

// CGR returns contact-graph routing: single-copy earliest-arrival
// planning over the full schedule, with per-window capacity and relay
// buffer reservations, re-planning when a window is missed or cut off.
// It treats the schedule passed to Run as a contact plan known a
// priori (the satellite-DTN setting), so it needs no control channel.
func CGR() Protocol {
	return Protocol{name: "cgr", newFactory: cgr.New, noCtl: true}
}

// Result couples the run summary with per-packet records for deeper
// analysis.
type Result struct {
	Summary Summary
	// Collector exposes per-packet delivery records, per-pair delays
	// (for paired t-tests) and cohort fairness.
	Collector *metrics.Collector
}

// Run executes one simulation: the schedule's meetings are replayed
// against the workload under the chosen protocol. It is deterministic
// for a fixed (schedule, workload, protocol, config) tuple.
func Run(sched *Schedule, w Workload, p Protocol, cfg Config) Result {
	rcfg := routing.Config{
		BufferBytes:   cfg.BufferBytes,
		MetaFraction:  -1,
		Hops:          cfg.Hops,
		LocalOnlyMeta: cfg.LocalMetaOnly,
		AcksOnly:      cfg.AcksOnly || p.acks,
	}
	switch {
	case p.noCtl:
		rcfg.Mode = routing.ControlNone
	case cfg.Control == InstantGlobal:
		rcfg.Mode = routing.ControlGlobal
	case cfg.Control == NoControl:
		rcfg.Mode = routing.ControlNone
	default:
		rcfg.Mode = routing.ControlInBand
	}
	if cfg.MetaFraction > 0 {
		rcfg.MetaFraction = cfg.MetaFraction
	} else if cfg.MetaFraction < 0 {
		rcfg.MetaFraction = 0
	}
	factory := p.factory
	if p.newFactory != nil {
		factory = p.newFactory()
	}
	col := routing.Run(routing.Scenario{
		Schedule: sched,
		Workload: w,
		Factory:  factory,
		Cfg:      rcfg,
		Seed:     cfg.Seed,
	})
	return Result{Summary: col.Summarize(sched.Duration), Collector: col}
}

// MobilityConfig parameterizes the synthetic mobility models (Table 4).
type MobilityConfig struct {
	Nodes         int
	Duration      float64 // seconds
	MeanMeeting   float64 // mean pairwise inter-meeting time, seconds
	TransferBytes int64   // per-opportunity size
	// PowerLawAlpha skews meeting rates by node popularity for
	// PowerLawMobility (<= 0 selects 1).
	PowerLawAlpha float64
}

// ExponentialMobility draws a uniform exponential meeting schedule.
func ExponentialMobility(cfg MobilityConfig, seed int64) *Schedule {
	m := mobility.Exponential{Config: mobility.Config{
		Nodes: cfg.Nodes, Duration: cfg.Duration,
		MeanMeeting: cfg.MeanMeeting, TransferBytes: cfg.TransferBytes,
		Jitter: true,
	}}
	return m.Schedule(rand.New(rand.NewSource(seed)))
}

// PowerLawMobility draws a popularity-skewed meeting schedule (§6.3).
func PowerLawMobility(cfg MobilityConfig, seed int64) *Schedule {
	r := rand.New(rand.NewSource(seed))
	m := mobility.PowerLaw{
		Config: mobility.Config{
			Nodes: cfg.Nodes, Duration: cfg.Duration,
			MeanMeeting: cfg.MeanMeeting, TransferBytes: cfg.TransferBytes,
			Jitter: true,
		},
		Alpha: cfg.PowerLawAlpha,
		Ranks: mobility.RandomRanks(cfg.Nodes, r),
	}
	return m.Schedule(r)
}

// DieselNetConfig re-exports the synthetic testbed generator's
// configuration.
type DieselNetConfig = trace.DieselNetConfig

// DefaultDieselNet returns the Table-3-calibrated testbed parameters.
func DefaultDieselNet() DieselNetConfig { return trace.DefaultDieselNet() }

// DieselNetDay generates one synthetic DieselNet day (the substitution
// for the paper's real 40-bus traces; see DESIGN.md).
func DieselNetDay(cfg DieselNetConfig, day int) *Schedule {
	return trace.NewDieselNet(cfg).Day(day)
}

// WorkloadConfig parameterizes PoissonWorkload.
type WorkloadConfig struct {
	// Nodes lists traffic endpoints; every ordered pair generates.
	Nodes []NodeID
	// PacketsPerWindowPerDest is the load axis: packets per Window per
	// ordered (src, dst) pair.
	PacketsPerWindowPerDest float64
	// Window is the load unit in seconds (3600 for trace-style loads,
	// 50 for Table 4's synthetic loads).
	Window float64
	// Duration is the generation horizon in seconds.
	Duration float64
	// PacketBytes is the packet size.
	PacketBytes int64
	// Deadline, when positive, stamps each packet with
	// created+Deadline.
	Deadline float64
}

// PoissonWorkload draws a workload with exponential inter-arrival
// times, as the deployment generated (§5.1).
func PoissonWorkload(cfg WorkloadConfig, seed int64) Workload {
	return packet.Generate(packet.GenConfig{
		Nodes:                 cfg.Nodes,
		PacketsPerHourPerDest: cfg.PacketsPerWindowPerDest,
		LoadWindow:            cfg.Window,
		Duration:              cfg.Duration,
		PacketSize:            cfg.PacketBytes,
		Deadline:              cfg.Deadline,
		FirstID:               1,
	}, rand.New(rand.NewSource(seed)))
}

// OptimalResult is the offline oracle's outcome.
type OptimalResult = optimal.Result

// Optimal computes the offline optimal baseline (§6.2.4): routing with
// complete knowledge of meetings and workload, the upper bound RAPID is
// compared against in Fig. 13.
func Optimal(sched *Schedule, w Workload) *OptimalResult {
	return optimal.Solve(sched, w, optimal.Options{})
}
